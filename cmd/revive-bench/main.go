// Command revive-bench regenerates the tables and figures of the ReVive
// paper's evaluation (section 6). Each experiment prints the measured
// series next to the paper's reference numbers; EXPERIMENTS.md records a
// full run.
//
// Usage:
//
//	revive-bench -all                # everything (several minutes)
//	revive-bench -fig 8              # one figure (6..12)
//	revive-bench -table 2            # one table (2 or 4)
//	revive-bench -storage            # section 6.2 accounting
//	revive-bench -availability       # section 3.3.2 table
//	revive-bench -split-domain       # E19 split-fault-domain comparison
//	revive-bench -strategy-matrix    # E23 recovery-strategy ablation
//	revive-bench -quick -all         # reduced budgets, fast smoke run
//	revive-bench -apps FFT,Radix     # restrict the application set
//	revive-bench -all -j 8           # eight simulations at a time
//	revive-bench -bench              # benchmark-regression suite vs. baseline
//	revive-bench -all -cpuprofile cpu.pb.gz   # profile a full run
//
// The experiment sweeps are embarrassingly parallel (one machine instance
// per app x variant cell); -j sets how many run at once (default: all
// CPUs). Reports and progress lines are byte-identical at every -j —
// see internal/sweep for the determinism contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"revive"
	"revive/internal/perf"
)

func main() {
	var (
		all          = flag.Bool("all", false, "run every experiment")
		fig          = flag.Int("fig", 0, "regenerate one figure (6, 7, 8, 9, 10, 11, 12)")
		table        = flag.Int("table", 0, "regenerate one table (2 or 4)")
		storage      = flag.Bool("storage", false, "section 6.2 storage accounting")
		availability = flag.Bool("availability", false, "section 3.3.2 availability")
		splitDomain  = flag.Bool("split-domain", false, "E19 split-fault-domain study (node-loss vs cpu-loss vs mem-partial)")
		stratMatrix  = flag.Bool("strategy-matrix", false, "E23 recovery-strategy ablation across every registered backend")
		strategy     = flag.String("strategy", "", "recovery-strategy backend for the other experiments: "+strings.Join(revive.StrategyNames(), ", ")+" (default "+revive.DefaultStrategy+")")
		quick        = flag.Bool("quick", false, "reduced instruction budgets")
		scale        = flag.Int("scale", 100, "divide paper instruction counts by this")
		appsFlag     = flag.String("apps", "", "comma-separated application subset")
		missRates    = flag.Bool("missrates", false, "baseline-only miss-rate calibration (Table 4)")
		jobs         = flag.Int("j", 0, "simulations to run in parallel (0 = all CPUs, 1 = serial)")
		shards       = flag.Int("shards", 1, "event-loop shards within each simulation (0 = one per CPU; output is byte-identical at any value)")

		bench           = flag.Bool("bench", false, "run the benchmark-regression suite instead of experiments")
		benchFilter     = flag.String("bench-filter", "", "restrict -bench to benchmarks whose name contains this")
		benchOut        = flag.String("bench-out", "", "write the -bench report here (default: BENCH_<date>.json)")
		benchBaseline   = flag.String("bench-baseline", "BENCH_baseline.json", "baseline report -bench compares against (empty: no comparison)")
		benchMaxRegress = flag.Float64("bench-max-regress", 0, "exit 1 if any -bench ns/op regressed more than this percent (0: report only)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := perf.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProfiles()

	if *bench {
		code := runBench(*benchFilter, *benchOut, *benchBaseline, *benchMaxRegress)
		stopProfiles()
		os.Exit(code)
	}

	o := revive.Options{Scale: *scale, Quick: *quick, Parallelism: *jobs, Shards: *shards}
	if *shards == 0 {
		o.Shards = runtime.NumCPU()
	}
	if err := revive.ValidateStrategy(*strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		stopProfiles()
		os.Exit(2)
	}
	o.Strategy = *strategy
	apps := revive.Apps(o)
	if *appsFlag != "" {
		var picked []revive.App
		for _, name := range strings.Split(*appsFlag, ",") {
			a, ok := revive.AppByName(strings.TrimSpace(name), o)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown application %q\n", name)
				stopProfiles()
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		apps = picked
	}

	w := os.Stdout
	if *missRates {
		revive.WriteTable4(w, revive.RunMissRates(o, apps))
		return
	}
	needMatrix := *all || *fig >= 8 && *fig <= 11 || *table == 4 || *storage
	needRecovery := *all || *fig == 7 || *fig == 12

	var matrix []revive.AppResult
	if needMatrix {
		start := time.Now()
		matrix = revive.RunErrorFree(o, apps, func(app string, v revive.Variant, st *revive.Stats) {
			fmt.Fprintf(os.Stderr, "  %-10s %-8s exec=%8.1fus ckps=%d\n",
				app, v, float64(st.ExecTime)/1000, st.Checkpoints)
		})
		fmt.Fprintf(os.Stderr, "error-free matrix: %v\n", time.Since(start))
	}
	var recov []revive.RecoveryResult
	if needRecovery {
		start := time.Now()
		recov = revive.RunRecoveryStudy(o, apps, func(app string) {
			fmt.Fprintf(os.Stderr, "  recovery: %s\n", app)
		})
		fmt.Fprintf(os.Stderr, "recovery study: %v\n", time.Since(start))
	}

	sep := func() { revive.Separator(w) }
	if *all || *fig == 6 {
		rows := revive.RunFigure6(o)
		cfg := revive.EvalConfig(o)
		revive.WriteFigure6(w, rows, cfg.Checkpoint.InterruptCost, cfg.Checkpoint.BarrierCost)
		sep()
	}
	if *all || *fig == 7 {
		worst := recov[0].NodeLoss
		for _, r := range recov {
			if r.NodeLoss.Unavailable() > worst.Unavailable() {
				worst = r.NodeLoss
			}
		}
		cfg := revive.EvalConfig(o)
		revive.WriteFigure7(w, worst, cfg.Checkpoint.Interval, cfg.Checkpoint.Interval*8/10)
		sep()
	}
	if *all || *fig == 8 {
		revive.WriteFigure8(w, matrix)
		sep()
	}
	if *all || *fig == 9 {
		revive.WriteFigure9(w, matrix)
		sep()
	}
	if *all || *fig == 10 {
		revive.WriteFigure10(w, matrix)
		sep()
	}
	if *all || *fig == 11 {
		revive.WriteFigure11(w, matrix)
		sep()
	}
	if *all || *fig == 12 {
		revive.WriteFigure12(w, recov)
		sep()
	}
	if *all || *table == 2 {
		revive.WriteTable2(w, revive.RunTable2(o))
		sep()
	}
	if *all || *table == 4 {
		revive.WriteTable4(w, matrix)
		sep()
	}
	if *all || *storage {
		revive.WriteStorage(w, revive.StorageStudy(matrix, 8))
		sep()
	}
	if *all || *availability {
		revive.WriteAvailability(w, revive.AvailabilityStudy())
		sep()
	}
	if *splitDomain {
		// Not part of -all: EXPERIMENTS.md E19 records a full run, and the
		// -quick -all golden stays byte-identical.
		start := time.Now()
		app := apps[0]
		res := revive.RunSplitDomainStudy(o, app, []int{8, 2}, func(gs int) {
			fmt.Fprintf(os.Stderr, "  split-domain: %s group size %d\n", app.Label, gs)
		})
		fmt.Fprintf(os.Stderr, "split-domain study: %v\n", time.Since(start))
		revive.WriteE19(w, res, revive.EvalConfig(o).Checkpoint.Interval)
		sep()
	}
	if *stratMatrix {
		// Not part of -all for the same reason as -split-domain: the
		// -quick -all golden stays byte-identical, and EXPERIMENTS.md E23
		// records a full run. The matrix runs every registered backend, so
		// -strategy (which selects one backend for the other experiments)
		// does not apply here.
		start := time.Now()
		res := revive.RunStrategyMatrix(o, apps, func(app, strat string, st *revive.Stats) {
			fmt.Fprintf(os.Stderr, "  %-10s %-11s exec=%8.1fus ckps=%d\n",
				app, strat, float64(st.ExecTime)/1000, st.Checkpoints)
		})
		fmt.Fprintf(os.Stderr, "strategy matrix: %v\n", time.Since(start))
		revive.WriteStrategyMatrix(w, res)
		sep()
	}
	if !*all && *fig == 0 && *table == 0 && !*storage && !*availability && !*splitDomain && !*stratMatrix {
		flag.Usage()
		stopProfiles()
		os.Exit(2)
	}
}
