// Command revive-serve is the persistent experiment daemon: an HTTP/JSON
// service that accepts sim/sweep/chaos/experiment jobs, runs them on the
// deterministic sweep pool, and survives being killed at any instant.
//
// Jobs are journaled (write-ahead log + snapshot bundles under -state-dir)
// and results live in a content-addressed cache: restarting after a kill
// re-queues interrupted jobs and completes them exactly once, and an
// identical request is served the byte-identical cached response without
// re-simulation.
//
//	revive-serve -addr :8329 -state-dir /var/lib/revive
//
//	curl -X POST localhost:8329/run -d '{"kind":"sim","apps":["fft"],"quick":true}'
//	curl -X POST localhost:8329/run -d '{"kind":"sim","apps":["fft"],"strategy":"conelog"}'
//	curl -X POST localhost:8329/jobs -d '{"kind":"sweep","quick":true}'
//	curl localhost:8329/jobs/<id>/result
//	curl -N localhost:8329/jobs/<id>/events    # live progress (SSE)
//	curl localhost:8329/metrics                # Prometheus text exposition
//	curl localhost:8329/statusz
//
// -log-json switches the daemon to structured JSON logs (one slog record
// per line, correlated by job ID); -pprof mounts net/http/pprof under
// /debug/pprof/ for live profiling (off by default).
//
// SIGTERM or SIGINT drains gracefully: admission stops (/readyz turns 503),
// the in-flight job is cut at its next cell boundary and parked as
// accepted, a final snapshot is written, and the next start resumes it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"revive/internal/obs"
	"revive/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8329", "listen address")
		stateDir = flag.String("state-dir", "", "persistence root: journal, snapshots, result cache (required)")
		maxQueue = flag.Int("max-queue", 64, "admission queue bound; excess submissions get 429 + Retry-After")
		timeout  = flag.Duration("job-timeout", 10*time.Minute, "per-job deadline")
		maxEv    = flag.Uint64("max-events", 4e9, "per-simulation event budget (watchdog; 0 = stall guard only)")
		par      = flag.Int("j", 0, "intra-job parallelism (0 = one worker per CPU); responses are byte-identical at every setting")
		shards   = flag.Int("shards", 1, "event-loop shards within each simulation (0 = one per CPU); responses are byte-identical at every setting")
		snapN    = flag.Int("snap-every", 32, "journal records between snapshot compactions")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		logJSON  = flag.Bool("log-json", false, "structured JSON logs (one slog record per line, job-ID correlated) instead of plain text")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (live CPU/heap/goroutine profiling; see internal/perf)")
	)
	flag.Parse()
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	logger := log.New(os.Stderr, "revive-serve: ", log.LstdFlags)
	opts := serve.Options{
		StateDir:      *stateDir,
		MaxQueue:      *maxQueue,
		JobTimeout:    *timeout,
		MaxEvents:     *maxEv,
		Parallelism:   *par,
		Shards:        *shards,
		SnapshotEvery: *snapN,
		Log:           logger.Printf,
	}
	logf := logger.Printf
	if *logJSON {
		sl := obs.NewLogger(os.Stderr)
		opts.Logger = sl
		logf = obs.Printf(sl)
		opts.Log = logf // legacy printf lines become JSON records too
	}
	fatalf := func(format string, args ...any) {
		logf(format, args...)
		os.Exit(1)
	}
	if *stateDir == "" {
		fatalf("-state-dir is required")
	}

	srv, err := serve.New(opts)
	if err != nil {
		fatalf("open state dir: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	handler := srv.Handler()
	if *pprofOn {
		// The profiling surface stays off the default mux and off the
		// daemon's API mux unless explicitly requested.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	logf("serving on %s (state: %s)", ln.Addr(), *stateDir)
	fmt.Printf("READY %s\n", ln.Addr()) // machine-readable startup line for scripts/CI

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logf("%v: draining", s)
	case err := <-done:
		fatalf("http server: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logf("drain: %v", err)
	}
	httpSrv.Shutdown(ctx)
	logf("drained; interrupted jobs resume on the next start")
}
