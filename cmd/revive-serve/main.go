// Command revive-serve is the persistent experiment daemon: an HTTP/JSON
// service that accepts sim/sweep/chaos/experiment jobs, runs them on the
// deterministic sweep pool, and survives being killed at any instant.
//
// Jobs are journaled (write-ahead log + snapshot bundles under -state-dir)
// and results live in a content-addressed cache: restarting after a kill
// re-queues interrupted jobs and completes them exactly once, and an
// identical request is served the byte-identical cached response without
// re-simulation.
//
//	revive-serve -addr :8329 -state-dir /var/lib/revive
//
//	curl -X POST localhost:8329/run -d '{"kind":"sim","apps":["fft"],"quick":true}'
//	curl -X POST localhost:8329/jobs -d '{"kind":"sweep","quick":true}'
//	curl localhost:8329/jobs/<id>/result
//	curl localhost:8329/statusz
//
// SIGTERM or SIGINT drains gracefully: admission stops (/readyz turns 503),
// the in-flight job is cut at its next cell boundary and parked as
// accepted, a final snapshot is written, and the next start resumes it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"revive/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8329", "listen address")
		stateDir = flag.String("state-dir", "", "persistence root: journal, snapshots, result cache (required)")
		maxQueue = flag.Int("max-queue", 64, "admission queue bound; excess submissions get 429 + Retry-After")
		timeout  = flag.Duration("job-timeout", 10*time.Minute, "per-job deadline")
		maxEv    = flag.Uint64("max-events", 4e9, "per-simulation event budget (watchdog; 0 = stall guard only)")
		par      = flag.Int("j", 0, "intra-job parallelism (0 = one worker per CPU); responses are byte-identical at every setting")
		snapN    = flag.Int("snap-every", 32, "journal records between snapshot compactions")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "revive-serve: ", log.LstdFlags)
	if *stateDir == "" {
		logger.Fatal("-state-dir is required")
	}

	srv, err := serve.New(serve.Options{
		StateDir:      *stateDir,
		MaxQueue:      *maxQueue,
		JobTimeout:    *timeout,
		MaxEvents:     *maxEv,
		Parallelism:   *par,
		SnapshotEvery: *snapN,
		Log:           logger.Printf,
	})
	if err != nil {
		logger.Fatalf("open state dir: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	logger.Printf("serving on %s (state: %s)", ln.Addr(), *stateDir)
	fmt.Printf("READY %s\n", ln.Addr()) // machine-readable startup line for scripts/CI

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logger.Printf("%v: draining", s)
	case err := <-done:
		logger.Fatalf("http server: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: %v", err)
	}
	httpSrv.Shutdown(ctx)
	logger.Printf("drained; interrupted jobs resume on the next start")
}
