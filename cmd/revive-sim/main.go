// Command revive-sim runs one workload on one machine configuration and
// prints the execution statistics: the interactive front door to the
// simulator.
//
// Usage:
//
//	revive-sim -app FFT                      # ReVive, 7+1 parity, Cp regime
//	revive-sim -app Radix -baseline          # no recovery support
//	revive-sim -app Ocean -mirror            # mirroring instead of parity
//	revive-sim -app FFT -strategy inline-log # alternative recovery backend
//	revive-sim -app LU -interval 200us       # custom checkpoint interval
//	revive-sim -app FFT -fault cpu-loss      # kill node 5's processor mid-run
//	revive-sim -app FFT -fault mem-partial -fault-frames 16   # partial memory loss
//	revive-sim -app FFT -trace out.json -series out.csv   # observability sinks
//	revive-sim -app FFT -progress            # live per-checkpoint progress on stderr
//	revive-sim -app FFT -json                # machine-readable stats
//	revive-sim -apps FFT,Radix,Ocean -j 4    # multi-app sweep, 4 at a time
//	revive-sim -apps all                     # sweep every application
//	revive-sim -app FFT -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	revive-sim -app FFT -max-events 50000000 # watchdog: typed error, never a hang
//	revive-sim -list                         # the 12 applications
//
// The -apps sweep runs each application on its own machine instance, -j
// at a time (default: all CPUs), and prints one summary row per app. The
// table is byte-identical at every -j (see internal/sweep).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"revive"
	"revive/internal/arch"
	"revive/internal/perf"
	"revive/internal/stats"
	"revive/internal/sweep"
	"revive/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "FFT", "application (Table 4 name)")
		appsFlag = flag.String("apps", "", "comma-separated application sweep, or \"all\" (one summary row per app)")
		jobs     = flag.Int("j", 0, "simulations to run in parallel for -apps (0 = all CPUs, 1 = serial)")
		baseline = flag.Bool("baseline", false, "run without recovery support")
		mirror   = flag.Bool("mirror", false, "mirroring instead of 7+1 parity")
		strategy = flag.String("strategy", "", "recovery-strategy backend: "+strings.Join(revive.StrategyNames(), ", ")+" (default "+revive.DefaultStrategy+")")
		noCkpt   = flag.Bool("nockpt", false, "infinite checkpoint interval (CpInf)")
		interval = flag.Duration("interval", 0, "checkpoint interval (e.g. 200us; default: regime)")
		nodes    = flag.Int("nodes", 16, "node count")
		shards   = flag.Int("shards", 1, "event-loop shards within one simulation (0 = one per CPU; output is byte-identical at any value)")
		scale    = flag.Int("scale", 100, "divide paper instruction counts by this")
		quick    = flag.Bool("quick", false, "reduced instruction budget")
		list     = flag.Bool("list", false, "list applications and exit")
		util     = flag.Bool("util", false, "print the per-node utilization report")
		record   = flag.String("record", "", "write the workload's trace to this file and exit")
		replay   = flag.String("replay", "", "run a recorded trace instead of an application")
		maxEv    = flag.Uint64("max-events", 0, "watchdog: abort with a typed error after this many events (0 = no budget)")

		faultKind    = flag.String("fault", "", "inject one fault mid-run: node-loss, cpu-loss, mem-partial or transient (detection, rollback and resume are automatic)")
		faultNode    = flag.Int("fault-node", 5, "victim node for -fault (ignored for transient)")
		faultAt      = flag.Duration("fault-at", 0, "error time for -fault (default: 2.5 checkpoint intervals)")
		faultDetect  = flag.Duration("fault-detect", 0, "detection latency for -fault (default: a tenth of the checkpoint interval)")
		faultFrameLo = flag.Int("fault-frame-lo", 0, "first lost frame for -fault mem-partial")
		faultFrames  = flag.Int("fault-frames", 8, "lost frame count for -fault mem-partial")

		progress    = flag.Bool("progress", false, "print per-checkpoint progress (epoch, events, sim-time) to stderr")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON of the run (load in Perfetto)")
		traceEvents = flag.Int("trace-events", 1<<20, "event ring capacity for -trace (the last N events are kept)")
		seriesOut   = flag.String("series", "", "write the per-epoch metric time-series (CSV, or JSON with a .json suffix)")
		jsonOut     = flag.Bool("json", false, "print the run result as machine-readable JSON instead of text")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := perf.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProfiles()
	// os.Exit skips deferred calls; every early exit below goes through
	// this so a profiled error run still writes complete profiles.
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	o := revive.Options{Nodes: *nodes, Scale: *scale, Quick: *quick, Shards: *shards}
	if *shards == 0 {
		o.Shards = runtime.NumCPU()
	}
	if *mirror {
		o.GroupSize = 2
	}
	if err := revive.ValidateStrategy(*strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	if *baseline && *strategy != "" {
		fmt.Fprintln(os.Stderr, "-strategy needs recovery support; drop -baseline")
		exit(2)
	}
	o.Strategy = *strategy
	switch *faultKind {
	case "", "node-loss", "cpu-loss", "mem-partial", "transient":
	default:
		fmt.Fprintf(os.Stderr, "unknown -fault %q (known: node-loss, cpu-loss, mem-partial, transient)\n", *faultKind)
		exit(2)
	}
	if *faultKind != "" {
		if *baseline {
			fmt.Fprintln(os.Stderr, "-fault needs recovery support; drop -baseline")
			exit(2)
		}
		// Resume restores from the target checkpoint's snapshot.
		o.Verify = true
	}
	if *list {
		fmt.Printf("%-12s %12s %10s\n", "App", "Paper instr", "Paper miss")
		for _, a := range revive.Apps(o) {
			fmt.Printf("%-12s %11dM %9.2f%%\n", a.Label, a.PaperInstrM, a.PaperMissPct)
		}
		return
	}
	if *appsFlag != "" {
		if *replay != "" || *record != "" || *traceOut != "" || *seriesOut != "" || *faultKind != "" || *progress {
			fmt.Fprintln(os.Stderr, "-apps sweeps are incompatible with -replay, -record, -trace, -series, -fault and -progress")
			exit(2)
		}
		exit(runAppsSweep(o, *appsFlag, *jobs, *baseline, *mirror, *noCkpt, *interval, *jsonOut))
	}
	var wl revive.Workload
	appLabel := *appName
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		wl, err = revive.ReplayTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		appLabel = *replay
	} else {
		app, ok := revive.AppByName(*appName, o)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown application %q (try -list)\n", *appName)
			exit(2)
		}
		wl = app
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
			if err := revive.RecordTrace(f, app, *nodes); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
			f.Close()
			fmt.Printf("trace of %s (%d processors) written to %s\n", app.Label, *nodes, *record)
			return
		}
	}

	cfg := buildConfig(o, *baseline, *noCkpt, *interval)
	if *traceOut != "" {
		cfg.Trace = trace.New(*traceEvents)
	}
	if *seriesOut != "" {
		cfg.Series = &trace.Series{}
	}

	m := revive.New(cfg)
	m.Load(wl)
	if *progress {
		// One updating line on stderr per committed checkpoint: the same
		// per-epoch hook the daemon streams over SSE. stdout is untouched,
		// so piped output stays byte-identical with and without -progress.
		m.Cfg.OnSample = func(smp trace.Sample) {
			fmt.Fprintf(os.Stderr, "\rprogress: epoch %-6d events %-12d sim %8.2fus",
				smp.Epoch, m.Engine.Steps(), float64(smp.TimeNS)/1e3)
		}
	}
	var faultRep *revive.DetectionReport
	if *faultKind != "" {
		at := revive.Time(faultAt.Nanoseconds())
		if at == 0 {
			at = cfg.Checkpoint.Interval * 5 / 2
		}
		det := revive.Time(faultDetect.Nanoseconds())
		if det == 0 {
			det = cfg.Checkpoint.Interval / 10
		}
		victim := revive.NodeID(*faultNode)
		done := func(r revive.DetectionReport) { faultRep = &r }
		switch *faultKind {
		case "node-loss":
			m.ScheduleNodeLoss(at, det, victim, done)
		case "cpu-loss":
			m.ScheduleCPULoss(at, det, victim, done)
		case "mem-partial":
			m.ScheduleMemPartialLoss(at, det, victim,
				arch.Frame(*faultFrameLo), arch.Frame(*faultFrames), done)
		case "transient":
			m.ScheduleTransientError(at, det, done)
		}
	}
	start := time.Now()
	st, runErr := m.RunBudget(*maxEv)
	wall := time.Since(start)
	if *progress {
		fmt.Fprintln(os.Stderr) // terminate the updating progress line
	}
	if runErr != nil {
		// The watchdog fired: ErrLivelock (budget exhausted) or
		// ErrStalled (queue drained early). Typed, not a hang.
		fmt.Fprintln(os.Stderr, "watchdog:", runErr)
		exit(3)
	}
	if *faultKind != "" && faultRep == nil {
		fmt.Fprintln(os.Stderr, "-fault never fired: the run ended before -fault-at; lower it or raise -scale")
		exit(2)
	}

	mode := "ReVive 7+1 parity"
	if *baseline {
		mode = "baseline (no recovery)"
	} else if *mirror {
		mode = "ReVive mirroring"
	}
	if *strategy != "" && *strategy != revive.DefaultStrategy {
		mode += " [" + *strategy + "]"
	}

	if *traceOut != "" {
		if err := writeFileWith(*traceOut, cfg.Trace.WriteChrome); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			exit(2)
		}
	}
	if *seriesOut != "" {
		writer := cfg.Series.WriteCSV
		if strings.HasSuffix(*seriesOut, ".json") {
			writer = cfg.Series.WriteJSON
		}
		if err := writeFileWith(*seriesOut, writer); err != nil {
			fmt.Fprintln(os.Stderr, "writing series:", err)
			exit(2)
		}
	}

	parityOK := true
	var parityErr error
	if !*baseline {
		if parityErr = m.VerifyParity(); parityErr != nil {
			parityOK = false
		}
	}

	if *jsonOut {
		type faultJSON struct {
			Kind        string      `json:"kind"`
			Node        int         `json:"node"` // -1 for transient
			ErrorAtNS   revive.Time `json:"error_at_ns"`
			DetectedNS  revive.Time `json:"detected_at_ns"`
			TargetEpoch uint64      `json:"target_epoch"`
			LostWorkNS  revive.Time `json:"lost_work_ns"`
			Recovery    string      `json:"recovery"` // core.Report.String
			Error       string      `json:"error,omitempty"`
		}
		result := struct {
			App            string       `json:"app"`
			Nodes          int          `json:"nodes"`
			Mode           string       `json:"mode"`
			WallSeconds    float64      `json:"wall_seconds"`
			ParityVerified *bool        `json:"parity_verified,omitempty"` // absent for -baseline
			Fault          *faultJSON   `json:"fault,omitempty"`           // absent without -fault
			Stats          *stats.Stats `json:"stats"`
		}{App: appLabel, Nodes: *nodes, Mode: mode, WallSeconds: wall.Seconds(), Stats: st}
		if !*baseline {
			result.ParityVerified = &parityOK
		}
		if faultRep != nil {
			fj := &faultJSON{
				Kind: *faultKind, Node: int(faultRep.Lost),
				ErrorAtNS: faultRep.ErrorAt, DetectedNS: faultRep.DetectedAt,
				TargetEpoch: faultRep.Target, LostWorkNS: faultRep.LostWork,
				Recovery: faultRep.Recovery.String(),
			}
			if faultRep.Err != nil {
				fj.Error = faultRep.Err.Error()
			}
			result.Fault = fj
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
	} else {
		fmt.Printf("%s on %d nodes, %s\n", appLabel, *nodes, mode)
		fmt.Printf("  instructions:   %d (%.1fM)\n", st.Instructions, float64(st.Instructions)/1e6)
		fmt.Printf("  memory refs:    %d (%.1f%% loads)\n", st.MemRefs,
			100*float64(st.Loads)/float64(st.MemRefs))
		fmt.Printf("  exec time:      %.2f ms simulated (%.1fs wall)\n",
			float64(st.ExecTime)/1e6, wall.Seconds())
		fmt.Printf("  IPC:            %.2f per processor\n",
			float64(st.Instructions)/float64(st.ExecTime)/float64(*nodes))
		fmt.Printf("  L1 miss rate:   %.2f%%   L2 miss rate: %.2f%% (%.2f misses/1000 instr)\n",
			100*float64(st.L1Misses)/float64(st.L1Misses+st.L1Hits),
			100*st.L2MissRate(), st.L2MissesPer1000Instr())
		if !*baseline {
			fmt.Printf("  checkpoints:    %d (flush %.1f us, barriers %.1f us, interrupts %.1f us)\n",
				st.Checkpoints, float64(st.CkpFlushTime)/1000,
				float64(st.CkpBarrierTime)/1000, float64(st.CkpInterruptTime)/1000)
			fmt.Printf("  peak log:       %.1f KB\n", float64(st.LogBytesPeak)/1024)
		}
		if faultRep != nil {
			where := fmt.Sprintf(" node %d", faultRep.Lost)
			if faultRep.Lost < 0 {
				where = ""
			}
			fmt.Printf("  fault:          %s%s at %.1fus, detected at %.1fus\n",
				*faultKind, where,
				float64(faultRep.ErrorAt)/1000, float64(faultRep.DetectedAt)/1000)
			fmt.Printf("  recovery:       %s\n", faultRep.Recovery.String())
			fmt.Printf("  lost work:      %.1fus (rolled back to epoch %d)\n",
				float64(faultRep.LostWork)/1000, faultRep.Target)
			if faultRep.Err != nil {
				fmt.Printf("  recovery error: %v\n", faultRep.Err)
			}
		}
		fmt.Println("  memory accesses by class:")
		for c := stats.Class(0); c < stats.NumClasses; c++ {
			if st.MemAccesses[c] > 0 {
				fmt.Printf("    %-8s %12d\n", c, st.MemAccesses[c])
			}
		}
		fmt.Println("  network bytes by class:")
		for c := stats.Class(0); c < stats.NumClasses; c++ {
			if st.NetBytes[c] > 0 {
				fmt.Printf("    %-8s %12d\n", c, st.NetBytes[c])
			}
		}
		if *util {
			fmt.Println("  per-node utilization:")
			m.WriteUtilization(os.Stdout)
			fmt.Printf("  fabric faults:  drops=%d corrupts=%d dups=%d delays=%d failovers=%d undeliverable=%d\n",
				st.NetFaultDrops, st.NetFaultCorrupts, st.NetFaultDups, st.NetFaultDelays,
				st.NetRouteFailovers, st.NetRouteDrops)
			fmt.Printf("  transport:      retransmits=%d dedups=%d crc-caught=%d acks=%d unreachable=%d\n",
				st.XportRetransmits, st.XportDupsDropped, st.XportCorruptsCaught,
				st.XportAcks, st.XportUnreachable)
			if len(st.RecoveryHistory) > 0 {
				fmt.Printf("  recovery scope: rebuilt=%d skipped=%d frames over %d recovery(ies)\n",
					st.FramesReconstructed, st.FramesSkipped, len(st.RecoveryHistory))
			}
		}
		if *traceOut != "" {
			fmt.Printf("  trace:          %d event(s) to %s (%d dropped from the ring)\n",
				cfg.Trace.Total()-cfg.Trace.Dropped(), *traceOut, cfg.Trace.Dropped())
		}
		if *seriesOut != "" {
			fmt.Printf("  series:         %d epoch sample(s) to %s\n", cfg.Series.Len(), *seriesOut)
		}
	}

	if !parityOK {
		fmt.Fprintf(os.Stderr, "PARITY VIOLATION: %v\n", parityErr)
		exit(1)
	}
	if !*baseline && !*jsonOut {
		fmt.Println("  parity invariant: verified")
	}
	if faultRep != nil && faultRep.Err != nil {
		exit(1)
	}
}

// buildConfig assembles the machine configuration the flags select.
func buildConfig(o revive.Options, baseline, noCkpt bool, interval time.Duration) revive.Config {
	if baseline {
		return revive.BaselineConfig(o)
	}
	cfg := revive.EvalConfig(o)
	if noCkpt {
		cfg.Checkpoint.Interval = 0
	}
	if interval != 0 {
		cfg.Checkpoint.Interval = revive.Time(interval.Nanoseconds())
	}
	return cfg
}

// modeLabel names the configuration in reports.
func modeLabel(baseline, mirror bool) string {
	switch {
	case baseline:
		return "baseline (no recovery)"
	case mirror:
		return "ReVive mirroring"
	default:
		return "ReVive 7+1 parity"
	}
}

// runAppsSweep runs one machine instance per requested application, jobs
// at a time, and prints a per-app summary (one deterministic row per app;
// wall-clock totals go to stderr so stdout stays byte-identical at every
// -j). Returns the process exit code: 1 if any run violated parity.
func runAppsSweep(o revive.Options, names string, jobs int, baseline, mirror, noCkpt bool, interval time.Duration, jsonOut bool) int {
	apps := revive.Apps(o)
	if names != "all" {
		var picked []revive.App
		for _, name := range strings.Split(names, ",") {
			a, ok := revive.AppByName(strings.TrimSpace(name), o)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown application %q (try -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		apps = picked
	}
	type row struct {
		st        *stats.Stats
		parityErr error
	}
	mode := modeLabel(baseline, mirror)
	if o.Strategy != "" && o.Strategy != revive.DefaultStrategy {
		mode += " [" + o.Strategy + "]"
	}
	start := time.Now()
	rows := sweep.Run(jobs, len(apps), func(i int) row {
		m := revive.New(buildConfig(o, baseline, noCkpt, interval))
		m.Load(apps[i])
		r := row{st: m.Run()}
		if !baseline {
			r.parityErr = m.VerifyParity()
		}
		return r
	}, nil)
	wall := time.Since(start)

	violations := 0
	if jsonOut {
		type jsonRow struct {
			App            string       `json:"app"`
			Nodes          int          `json:"nodes"`
			Mode           string       `json:"mode"`
			ParityVerified *bool        `json:"parity_verified,omitempty"` // absent for -baseline
			Stats          *stats.Stats `json:"stats"`
		}
		out := make([]jsonRow, len(apps))
		for i, r := range rows {
			out[i] = jsonRow{App: apps[i].Label, Nodes: o.Nodes, Mode: mode, Stats: r.st}
			if !baseline {
				ok := r.parityErr == nil
				out[i].ParityVerified = &ok
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		fmt.Printf("sweep of %d application(s) on %d nodes, %s\n", len(apps), o.Nodes, mode)
		fmt.Printf("%-12s %9s %9s %6s %8s %8s %6s %10s  %s\n",
			"App", "Instr(M)", "Exec(ms)", "IPC", "L1miss%", "L2miss%", "Ckpts", "PeakLog", "Parity")
		for i, r := range rows {
			st := r.st
			parity := "-"
			if !baseline {
				parity = "ok"
				if r.parityErr != nil {
					parity = "VIOLATION"
				}
			}
			fmt.Printf("%-12s %9.1f %9.2f %6.2f %8.2f %8.2f %6d %8.1fK  %s\n",
				apps[i].Label, float64(st.Instructions)/1e6, float64(st.ExecTime)/1e6,
				float64(st.Instructions)/float64(st.ExecTime)/float64(o.Nodes),
				100*float64(st.L1Misses)/float64(st.L1Misses+st.L1Hits),
				100*st.L2MissRate(), st.Checkpoints, float64(st.LogBytesPeak)/1024, parity)
		}
	}
	for i, r := range rows {
		if r.parityErr != nil {
			fmt.Fprintf(os.Stderr, "PARITY VIOLATION in %s: %v\n", apps[i].Label, r.parityErr)
			violations++
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d simulation(s) in %.1fs wall\n", len(apps), wall.Seconds())
	if violations > 0 {
		return 1
	}
	return 0
}

// writeFileWith streams write's output into path.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
