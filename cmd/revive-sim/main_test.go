package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"revive"
	"revive/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDefaultStatsJSONGolden pins the -json stats payload of a default
// (no-fault) run byte-for-byte: the split-fault-domain scope counters are
// omitempty and the fault block is absent, so growing the fault model must
// not change what a healthy run emits. The golden deliberately excludes the
// wall-clock wrapper fields (wall_seconds is nondeterministic); everything
// in Stats is simulation-deterministic.
func TestDefaultStatsJSONGolden(t *testing.T) {
	o := revive.Options{Quick: true}
	app, ok := revive.AppByName("FFT", o)
	if !ok {
		t.Fatal("FFT missing from the application table")
	}
	m := revive.New(revive.EvalConfig(o))
	m.Load(app)
	st := m.Run()

	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	golden := filepath.Join("testdata", "stats_quick_fft.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./cmd/revive-sim -run Golden -update)", err)
	}
	if !bytes.Equal(blob, want) {
		t.Errorf("default no-fault stats JSON drifted from %s\n"+
			"(intentional? regenerate with go test ./cmd/revive-sim -run Golden -update)", golden)
	}
	for _, field := range []string{"FramesReconstructed", "FramesSkipped", "frames_rebuilt", "frames_skipped"} {
		if bytes.Contains(blob, []byte(field)) {
			t.Errorf("no-fault stats JSON leaks split-domain scope field %q", field)
		}
	}
	// The stats schema version must appear exactly once per run result
	// (the cache key of revive-serve discriminates code versions on it),
	// stamped with the current build's SchemaVersion.
	if n := bytes.Count(blob, []byte(`"schema_version"`)); n != 1 {
		t.Errorf("schema_version appears %d times in the stats envelope, want exactly 1", n)
	}
	if !bytes.Contains(blob, []byte(fmt.Sprintf(`"schema_version": %d`, stats.SchemaVersion))) {
		t.Errorf("stats envelope does not carry the build's SchemaVersion %d", stats.SchemaVersion)
	}
}
