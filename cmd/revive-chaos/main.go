// Revive-chaos runs randomized fault campaigns against the ReVive machine
// model: each campaign generates a fault schedule from a seed (node losses,
// transients, multi-loss, double faults; injected at random times, protocol
// steps, mid-commit or mid-recovery — plus fabric faults: probabilistic
// message drop/corruption/duplication/delay and permanent link or router
// kills), executes it, recovers, and checks the invariant registry at every
// quiescent point. Failing schedules are shrunk to a minimal reproducer and
// written as a replayable JSON artifact.
//
//	revive-chaos -campaigns 200 -seed 42          # the standing campaign
//	revive-chaos -campaigns 200 -seed 42 -j 8     # eight campaigns at a time
//	revive-chaos -campaigns 200 -drop 0.01 -corrupt 0.001 -link-loss
//	revive-chaos -campaigns 200 -cpu-loss -mem-partial    # split-domain sweep
//	revive-chaos -campaigns 50 -strategy conelog  # full registry under another backend
//	revive-chaos -campaigns 10 -bug data-before-log -out fail.json
//	revive-chaos -campaigns 10 -bug drop-ack      # transport-audit self-test
//	revive-chaos -campaigns 10 -bug data-before-log -json  # machine-readable
//	revive-chaos -replay fail.json                # re-execute a reproducer
//
// Every failing campaign also carries a flight recording: the last -flight
// events of the shrunk reproducer's re-execution. With -out, each recording
// is additionally written as a Chrome trace-event file next to the artifact
// (open in Perfetto).
//
// Campaigns (including shrinking) run -j at a time (default: all CPUs);
// seeds are pre-drawn serially and results absorbed in campaign order, so
// the summary, artifacts and -v log are byte-identical at every -j.
//
// Exit status is 0 when every campaign holds all invariants, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"revive"
	"revive/internal/chaos"
	"revive/internal/stats"
	"revive/internal/trace"
)

func main() {
	campaigns := flag.Int("campaigns", 50, "number of fault campaigns to run")
	seed := flag.Uint64("seed", 1, "master seed (campaign schedules derive from it)")
	bug := flag.String("bug", "", "run a deliberately broken build (\"data-before-log\" or \"drop-ack\") to validate the harness")
	strategy := flag.String("strategy", "", "recovery-strategy backend the campaigns run under: "+strings.Join(revive.StrategyNames(), ", ")+" (default "+revive.DefaultStrategy+")")
	budget := flag.Int("shrink-budget", 48, "re-executions allowed when minimizing a failing schedule")
	drop := flag.Float64("drop", 0, "force a message-drop fault of this probability into every campaign")
	corrupt := flag.Float64("corrupt", 0, "force a message-corruption fault of this probability into every campaign")
	linkLoss := flag.Bool("link-loss", false, "force one random link or router kill into every campaign")
	cpuLoss := flag.Bool("cpu-loss", false, "convert every campaign's primary fault to a cpu-loss (processor dies, memory survives)")
	memPartial := flag.Bool("mem-partial", false, "convert every campaign's primary fault to a partial memory loss (with -cpu-loss: seeded coin per campaign)")
	out := flag.String("out", "", "write failing campaigns' artifacts to this JSON file")
	replay := flag.String("replay", "", "re-execute the schedule or artifact in this JSON file and exit")
	flight := flag.Int("flight", trace.DefaultCapacity, "flight-recorder ring size for failing campaigns (0 disables)")
	jsonOut := flag.Bool("json", false, "print the batch summary as machine-readable JSON instead of text")
	verbose := flag.Bool("v", false, "log every campaign")
	jobs := flag.Int("j", 0, "campaigns to run in parallel (0 = all CPUs, 1 = serial)")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayFile(*replay, *flight, *jsonOut))
	}
	if *bug != "" && *bug != chaos.BugDataBeforeLog && *bug != chaos.BugDropAck {
		fmt.Fprintf(os.Stderr, "unknown -bug %q (known: %q, %q)\n", *bug, chaos.BugDataBeforeLog, chaos.BugDropAck)
		os.Exit(2)
	}
	if *drop < 0 || *drop > 1 || *corrupt < 0 || *corrupt > 1 {
		fmt.Fprintln(os.Stderr, "-drop and -corrupt are probabilities in [0, 1]")
		os.Exit(2)
	}
	if err := revive.ValidateStrategy(*strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := chaos.Options{
		Campaigns: *campaigns, Seed: *seed, Bug: *bug, Strategy: *strategy, ShrinkBudget: *budget,
		DropProb: *drop, CorruptProb: *corrupt, LinkLoss: *linkLoss,
		CPULoss: *cpuLoss, MemPartial: *memPartial,
		FlightEvents: *flight, Parallelism: *jobs,
	}
	if *flight <= 0 {
		opts.FlightEvents = -1
	}
	if *verbose && !*jsonOut {
		opts.Log = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	}
	sum := chaos.Run(opts)

	if *jsonOut {
		result := struct {
			Counters stats.Campaign  `json:"counters"`
			Failures []chaos.Failure `json:"failures,omitempty"`
		}{Counters: sum.Counters, Failures: sum.Failures}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		fmt.Println(sum.Counters.String())
	}

	if len(sum.Failures) == 0 {
		if !*jsonOut {
			fmt.Println("all campaigns held every invariant")
		}
		return
	}
	if !*jsonOut {
		for _, f := range sum.Failures {
			fmt.Printf("FAIL seed %#016x: %v\n", f.CampaignSeed, f.Outcome.Violations[0])
			fmt.Printf("  minimal reproducer: %d fault(s), %d instr (shrunk in %d runs)\n",
				len(f.Artifact.Shrunk.Faults), f.Artifact.Shrunk.Instr, f.Artifact.ShrinkRuns)
		}
	}
	if *out != "" {
		blob, err := json.MarshalIndent(sum.Failures, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing artifacts:", err)
		} else if !*jsonOut {
			fmt.Printf("wrote %d artifact(s) to %s (re-run with -replay)\n", len(sum.Failures), *out)
		}
		writeFlightDumps(*out, sum.Failures, *jsonOut)
	}
	os.Exit(1)
}

// writeFlightDumps renders each failure's flight recording as a Chrome
// trace-event file next to the artifact file: fail.json becomes
// fail.flight0.json, fail.flight1.json, ...
func writeFlightDumps(out string, failures []chaos.Failure, quiet bool) {
	base := strings.TrimSuffix(out, ".json")
	for i, f := range failures {
		if len(f.FlightRecorder) == 0 {
			continue
		}
		path := fmt.Sprintf("%s.flight%d.json", base, i)
		if err := writeChromeFile(path, f.FlightRecorder); err != nil {
			fmt.Fprintln(os.Stderr, "writing flight recording:", err)
			continue
		}
		if !quiet {
			fmt.Printf("  flight recording: %d event(s) to %s (open in Perfetto)\n",
				len(f.FlightRecorder), path)
		}
	}
}

// writeChromeFile writes events to path in Chrome trace-event format.
func writeChromeFile(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeEvents(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replayFile re-executes a minimal reproducer. The file may hold a single
// artifact, a bare schedule, or the artifact list -out writes (the first
// entry replays). The replay runs with the flight recorder on; if it
// reproduces a violation, the recording lands in <path>.flight.json.
func replayFile(path string, flight int, jsonOut bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var failures []chaos.Failure
	if json.Unmarshal(data, &failures) == nil && len(failures) > 0 && failures[0].Artifact.Shrunk.Nodes != 0 {
		data, _ = json.Marshal(failures[0].Artifact)
	}
	s, err := chaos.LoadArtifact(data, path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if !jsonOut {
		fmt.Printf("replaying: %d node(s), group size %d, %d instr, bug=%q, %d fault(s)\n",
			s.Nodes, s.GroupSize, s.Instr, s.Bug, len(s.Faults))
	}
	var out *chaos.Outcome
	var events []trace.Event
	if flight > 0 {
		out, events = chaos.RunScheduleTraced(s, flight)
	} else {
		out = chaos.RunSchedule(s)
	}
	blob, _ := json.MarshalIndent(out, "", "  ")
	fmt.Println(string(blob))
	if out.Failed() {
		if len(events) > 0 {
			fp := strings.TrimSuffix(path, ".json") + ".flight.json"
			if err := writeChromeFile(fp, events); err != nil {
				fmt.Fprintln(os.Stderr, "writing flight recording:", err)
			} else if !jsonOut {
				fmt.Printf("flight recording: %d event(s) to %s (open in Perfetto)\n", len(events), fp)
			}
		}
		if !jsonOut {
			fmt.Printf("reproduced %d violation(s)\n", len(out.Violations))
		}
		return 1
	}
	if !jsonOut {
		fmt.Println("schedule ran clean")
	}
	return 0
}
