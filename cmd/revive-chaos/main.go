// Revive-chaos runs randomized fault campaigns against the ReVive machine
// model: each campaign generates a fault schedule from a seed (node losses,
// transients, multi-loss, double faults; injected at random times, protocol
// steps, mid-commit or mid-recovery — plus fabric faults: probabilistic
// message drop/corruption/duplication/delay and permanent link or router
// kills), executes it, recovers, and checks the invariant registry at every
// quiescent point. Failing schedules are shrunk to a minimal reproducer and
// written as a replayable JSON artifact.
//
//	revive-chaos -campaigns 200 -seed 42          # the standing campaign
//	revive-chaos -campaigns 200 -drop 0.01 -corrupt 0.001 -link-loss
//	revive-chaos -campaigns 10 -bug data-before-log -out fail.json
//	revive-chaos -campaigns 10 -bug drop-ack      # transport-audit self-test
//	revive-chaos -replay fail.json                # re-execute a reproducer
//
// Exit status is 0 when every campaign holds all invariants, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"revive/internal/chaos"
)

func main() {
	campaigns := flag.Int("campaigns", 50, "number of fault campaigns to run")
	seed := flag.Uint64("seed", 1, "master seed (campaign schedules derive from it)")
	bug := flag.String("bug", "", "run a deliberately broken build (\"data-before-log\" or \"drop-ack\") to validate the harness")
	budget := flag.Int("shrink-budget", 48, "re-executions allowed when minimizing a failing schedule")
	drop := flag.Float64("drop", 0, "force a message-drop fault of this probability into every campaign")
	corrupt := flag.Float64("corrupt", 0, "force a message-corruption fault of this probability into every campaign")
	linkLoss := flag.Bool("link-loss", false, "force one random link or router kill into every campaign")
	out := flag.String("out", "", "write failing campaigns' artifacts to this JSON file")
	replay := flag.String("replay", "", "re-execute the schedule or artifact in this JSON file and exit")
	verbose := flag.Bool("v", false, "log every campaign")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayFile(*replay))
	}
	if *bug != "" && *bug != chaos.BugDataBeforeLog && *bug != chaos.BugDropAck {
		fmt.Fprintf(os.Stderr, "unknown -bug %q (known: %q, %q)\n", *bug, chaos.BugDataBeforeLog, chaos.BugDropAck)
		os.Exit(2)
	}
	if *drop < 0 || *drop > 1 || *corrupt < 0 || *corrupt > 1 {
		fmt.Fprintln(os.Stderr, "-drop and -corrupt are probabilities in [0, 1]")
		os.Exit(2)
	}

	opts := chaos.Options{
		Campaigns: *campaigns, Seed: *seed, Bug: *bug, ShrinkBudget: *budget,
		DropProb: *drop, CorruptProb: *corrupt, LinkLoss: *linkLoss,
	}
	if *verbose {
		opts.Log = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	}
	sum := chaos.Run(opts)
	fmt.Println(sum.Counters.String())

	if len(sum.Failures) == 0 {
		fmt.Println("all campaigns held every invariant")
		return
	}
	for _, f := range sum.Failures {
		fmt.Printf("FAIL seed %#016x: %v\n", f.CampaignSeed, f.Outcome.Violations[0])
		fmt.Printf("  minimal reproducer: %d fault(s), %d instr (shrunk in %d runs)\n",
			len(f.Artifact.Shrunk.Faults), f.Artifact.Shrunk.Instr, f.Artifact.ShrinkRuns)
	}
	if *out != "" {
		blob, err := json.MarshalIndent(sum.Failures, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing artifacts:", err)
		} else {
			fmt.Printf("wrote %d artifact(s) to %s (re-run with -replay)\n", len(sum.Failures), *out)
		}
	}
	os.Exit(1)
}

// replayFile re-executes a minimal reproducer. The file may hold a single
// artifact, a bare schedule, or the artifact list -out writes (the first
// entry replays).
func replayFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var failures []chaos.Failure
	if json.Unmarshal(data, &failures) == nil && len(failures) > 0 && failures[0].Artifact.Shrunk.Nodes != 0 {
		data, _ = json.Marshal(failures[0].Artifact)
	}
	s, err := chaos.LoadArtifact(data, path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("replaying: %d node(s), group size %d, %d instr, bug=%q, %d fault(s)\n",
		s.Nodes, s.GroupSize, s.Instr, s.Bug, len(s.Faults))
	out := chaos.RunSchedule(s)
	blob, _ := json.MarshalIndent(out, "", "  ")
	fmt.Println(string(blob))
	if out.Failed() {
		fmt.Printf("reproduced %d violation(s)\n", len(out.Violations))
		return 1
	}
	fmt.Println("schedule ran clean")
	return 0
}
