package revive

import (
	"bytes"
	"strings"
	"testing"
)

// TestE19PartialPhase3AtMostNodeLoss is the regression test for the E19
// anomaly: a partial memory loss damages strictly less state than a full
// node loss, so on the same workload and seed its Phase 3 must never
// exceed the node-loss reference. (The bug: demand parity-group rebuilds
// were charged serially to the victim's live walker; a partial loss's
// declared range now rebuilds eagerly in Phase 2 instead.)
func TestE19PartialPhase3AtMostNodeLoss(t *testing.T) {
	o := Options{Quick: true}
	app, ok := AppByName("FFT", o)
	if !ok {
		t.Fatal("FFT missing")
	}
	res := RunSplitDomainStudy(o, app, []int{8, 2}, nil)
	for _, r := range res {
		if r.Partial.Phase3 > r.NodeLoss.Phase3 {
			t.Errorf("group size %d: mem-partial Phase 3 (%dns) exceeds node-loss (%dns)",
				r.GroupSize, r.Partial.Phase3, r.NodeLoss.Phase3)
		}
		// No Unavailable() comparison: mem-partial's eager Phase 2 can
		// cost one extra rebuild round when the damaged range spans more
		// pages than the victim's log (seen at full scale, GroupSize 2).
		// The pinned invariant is Phase 3, the rollback itself.
		if r.CPULoss.Phase3 > r.NodeLoss.Phase3 {
			t.Errorf("group size %d: cpu-loss Phase 3 (%dns) exceeds node-loss (%dns)",
				r.GroupSize, r.CPULoss.Phase3, r.NodeLoss.Phase3)
		}
		if r.Partial.FramesReconstructed == 0 {
			t.Errorf("group size %d: mem-partial rebuilt no frames; the scenario exercised nothing", r.GroupSize)
		}
	}
}

// TestStrategyMatrixParallelismByteIdentity extends the determinism
// contract to the E23 ablation: the whole matrix — report and event
// totals — must be byte-identical serial and at -j 4.
func TestStrategyMatrixParallelismByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy matrix in -short mode")
	}
	run := func(j int) string {
		o := Options{Quick: true, Parallelism: j}
		app, ok := AppByName("FFT", o)
		if !ok {
			t.Fatal("FFT missing")
		}
		res := RunStrategyMatrix(o, []App{app}, nil)
		var buf bytes.Buffer
		WriteStrategyMatrix(&buf, res)
		return buf.String()
	}
	want := run(1)
	got := run(4)
	if got != want {
		t.Errorf("-j 4 matrix diverges from serial:\n%s\nvs\n%s", got, want)
	}
	for _, name := range StrategyNames() {
		if !strings.Contains(want, name) {
			t.Errorf("matrix report does not mention backend %q", name)
		}
	}
}
